"""Reverse-mode automatic differentiation on numpy arrays.

This module is the lowest layer of the PracMHBench reproduction: a compact
autograd engine that provides exactly the operations the model zoo needs
(dense/conv layers, normalisation, attention, losses).  The design follows the
classic tape-based approach: every :class:`Tensor` produced by an operation
stores its parents and a backward closure.

Backward contract
-----------------
An op's backward closure receives the gradient of the loss w.r.t. the op's
output and **returns** a tuple of per-parent gradients, aligned with
``_parents`` (``None`` for parents that need no gradient).  The engine owns
all gradient routing: closures never touch shared state, which makes
:meth:`Tensor.backward` re-entrant (a backward may safely run while another
backward is in flight, eg. distillation losses built inside callbacks).

Returned gradient arrays may alias the incoming gradient or each other
(identity/broadcast/slice views are encouraged — they avoid copies); the
engine tracks buffer ownership and only accumulates in place into buffers it
allocated itself, donating them to leaf ``.grad`` slots when possible.

Topological ordering uses monotonically increasing creation sequence numbers:
parents are always created before their children, so a single reachability
sweep plus one C-level sort replaces the seed engine's two-pass DFS.  The
order is cached on the root tensor (keyed on graph identity), so repeated
``backward()`` calls on the same graph skip re-traversal entirely.

Only float computations are differentiated; integer label / index arrays are
passed around as plain numpy arrays.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Callable, Sequence

import numpy as np

from . import profiler

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

# Grad mode is *per thread*: the parallel client executor trains one client
# per worker thread, and a ``no_grad()`` block in one client's round (e.g.
# FedProto's prototype extraction) must not stop a concurrently-training
# client from recording its backward tape.
_GRAD_STATE = threading.local()

# Creation-order sequence numbers; parents always precede children, so
# sorting any reachable set by ``_seq`` yields a valid topological order.
# (``itertools.count`` is atomic under the GIL, so one shared sequence is
# safe across worker threads — ordering only needs to be monotonic.)
_SEQ = itertools.count()

# Plan-cache state is likewise *per thread* (see ``autograd/plan.py``, which
# owns this local): ``_PLAN_STATE.step`` is the active ``StepPlan`` while a
# training step runs under ``plan.step(...)``, else absent/None.  Tensor
# only ever reads it — one ``getattr`` per op when inactive.
_PLAN_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (eval / inference)."""
    previous = getattr(_GRAD_STATE, "enabled", True)
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should record the backward tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _needs_grad(t: "Tensor") -> bool:
    """Whether a gradient must be routed to ``t`` (leaf param or op node)."""
    return t.requires_grad or t._backward is not None


class Tensor:
    """A numpy array with an optional gradient and backward tape entry.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a float
        numpy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_seq", "_order", "_plan_tag")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype not in (np.float32, np.float64):
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], tuple] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._seq: int = next(_SEQ)
        self._order: list[Tensor] | None = None
        # (step token, creation index) while recorded by an active StepPlan.
        self._plan_tag: tuple | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], tuple]) -> "Tensor":
        """Create an op output, wiring the tape only when grads are needed.

        ``backward`` maps the output gradient to a tuple of per-parent
        gradients aligned with ``parents`` (entries may be ``None``).
        """
        if profiler.profiling_active():
            profiler.add_activation_bytes(data.nbytes)
        needs = (getattr(_GRAD_STATE, "enabled", True)
                 and any(p.requires_grad for p in parents))
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
            step = getattr(_PLAN_STATE, "step", None)
            if step is not None:
                step.record(out)
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Fold ``grad`` into :attr:`grad`.

        ``owned`` marks buffers allocated by the backward engine itself;
        those are adopted directly (zero copy) instead of duplicated.
        """
        if self.grad is None:
            if owned and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _topo_order(self) -> list["Tensor"]:
        """Reverse topological order of tape nodes / grad leaves from here.

        Cached on the root (graph identity == root identity): a second
        ``backward()`` on the same output reuses the order with no traversal.
        """
        order = self._order
        if order is None:
            step = getattr(_PLAN_STATE, "step", None)
            if step is not None:
                order = step.cached_order(self)
                if order is not None:
                    self._order = order
                    return order
            seen = {id(self)}
            order = [self]
            stack = [self]
            while stack:
                for parent in stack.pop()._parents:
                    if id(parent) not in seen:
                        seen.add(id(parent))
                        if parent._backward is not None:
                            order.append(parent)
                            stack.append(parent)
                        elif parent.requires_grad:
                            order.append(parent)
            # Children first: creation sequence numbers are a topo order.
            order.sort(key=lambda t: t._seq, reverse=True)
            self._order = order
            if step is not None:
                step.store_order(self, order)
        return order

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).  The pass
        uses only local state, so it is safe to start another backward while
        this one is running.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        grads: dict[int, np.ndarray] = {id(self): grad}
        # Buffers the engine allocated itself: safe to mutate in place and
        # to donate to leaf ``.grad`` slots.
        owned: set[int] = set()

        for node in self._topo_order():
            key = id(node)
            node_grad = grads.pop(key, None)
            if node_grad is None:
                continue
            node_owned = key in owned
            owned.discard(key)
            if node._backward is None:
                if node.requires_grad:
                    node._accumulate(node_grad, owned=node_owned)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not _needs_grad(parent):
                    continue
                pkey = id(parent)
                existing = grads.get(pkey)
                if existing is None:
                    grads[pkey] = pgrad
                elif pkey in owned:
                    existing += pgrad
                else:
                    # First fan-in merge allocates the owned buffer; later
                    # contributions accumulate into it in place.
                    grads[pkey] = existing + pgrad
                    owned.add(pkey)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def _binary(a: Tensor, b, forward, grad_a, grad_b) -> Tensor:
    b = as_tensor(b)
    data = forward(a.data, b.data)

    def backward(grad: np.ndarray) -> tuple:
        ga = gb = None
        if _needs_grad(a):
            ga = _unbroadcast(grad_a(grad, a.data, b.data), a.shape)
        if _needs_grad(b):
            gb = _unbroadcast(grad_b(grad, a.data, b.data), b.shape)
        return ga, gb

    return Tensor._make(data, (a, b), backward)


def _unary(a: Tensor, forward, grad_fn) -> Tensor:
    data = forward(a.data)

    def backward(grad: np.ndarray) -> tuple:
        return (grad_fn(grad, a.data, data),)

    return Tensor._make(data, (a,), backward)


def _add(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.add,
                   lambda g, x, y: g,
                   lambda g, x, y: g)


def _sub(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.subtract,
                   lambda g, x, y: g,
                   lambda g, x, y: -g)


def _mul(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.multiply,
                   lambda g, x, y: g * y,
                   lambda g, x, y: g * x)


def _div(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.divide,
                   lambda g, x, y: g / y,
                   lambda g, x, y: -g * x / (y * y))


def _pow(a: Tensor, exponent: float) -> Tensor:
    return _unary(a, lambda x: np.power(x, exponent),
                  lambda g, x, out: g * exponent * np.power(x, exponent - 1))


def _neg(a: Tensor) -> Tensor:
    return _unary(a, np.negative, lambda g, x, out: -g)


Tensor.__add__ = _add
Tensor.__radd__ = _add
Tensor.__sub__ = _sub
Tensor.__rsub__ = lambda a, b: _add(_neg(a), b)
Tensor.__mul__ = _mul
Tensor.__rmul__ = _mul
Tensor.__truediv__ = _div
Tensor.__rtruediv__ = lambda a, b: _div(as_tensor(b), a)
Tensor.__pow__ = _pow
Tensor.__neg__ = _neg


# ----------------------------------------------------------------------
# Unary math
# ----------------------------------------------------------------------

def exp(a: Tensor) -> Tensor:
    return _unary(a, np.exp, lambda g, x, out: g * out)


def log(a: Tensor) -> Tensor:
    return _unary(a, np.log, lambda g, x, out: g / x)


def sqrt(a: Tensor) -> Tensor:
    return _unary(a, np.sqrt, lambda g, x, out: g * 0.5 / out)


def tanh(a: Tensor) -> Tensor:
    return _unary(a, np.tanh, lambda g, x, out: g * (1.0 - out * out))


def sigmoid(a: Tensor) -> Tensor:
    def fwd(x):
        return 1.0 / (1.0 + np.exp(-x))

    return _unary(a, fwd, lambda g, x, out: g * out * (1.0 - out))


def relu(a: Tensor) -> Tensor:
    return _unary(a, lambda x: np.maximum(x, 0.0),
                  lambda g, x, out: g * (x > 0))


def relu6(a: Tensor) -> Tensor:
    return _unary(a, lambda x: np.clip(x, 0.0, 6.0),
                  lambda g, x, out: g * ((x > 0) & (x < 6.0)))


def hardswish(a: Tensor) -> Tensor:
    """x * relu6(x + 3) / 6, the MobileNetV3 activation."""

    def fwd(x):
        return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0

    def grad_fn(g, x, out):
        inner = np.clip(x + 3.0, 0.0, 6.0)
        d = inner / 6.0 + x * ((x > -3.0) & (x < 3.0)) / 6.0
        return g * d

    return _unary(a, fwd, grad_fn)


def gelu(a: Tensor) -> Tensor:
    """Tanh-approximation GELU (as used by ALBERT/transformers).

    The cube is expanded to ``x*x*x`` (numpy's generic ``power`` ufunc is
    ~100x slower than two multiplies) and the forward ``tanh`` — the only
    transcendental — is kept alive for the backward instead of being
    recomputed.
    """
    c = np.float32(np.sqrt(2.0 / np.pi))
    x = a.data
    t = np.tanh(c * (x + 0.044715 * (x * x * x)))
    out = 0.5 * x * (1.0 + t)

    def backward(grad: np.ndarray) -> tuple:
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * (x * x))
        return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def tsum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> tuple:
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        # Materialise contiguously: consumers (GEMM backward closures) hit
        # numpy slow paths on 0-stride broadcast views.
        out = np.empty(a.shape, dtype=g.dtype)
        out[...] = g
        return (out,)

    return Tensor._make(data, (a,), backward)


def tmean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[i] for i in axis]))
    else:
        count = a.shape[axis]
    return tsum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def tmax(a: Tensor, axis: int | None = None, keepdims: bool = False,
         **kwargs) -> Tensor:
    """Maximum along ``axis`` (all elements when ``axis is None``).

    Mirrors ``numpy.ndarray.max`` for the differentiable subset; gradient is
    split equally between ties.  Numpy kwargs that have no differentiable
    meaning here (``initial``, ``where``, ``out``) are rejected explicitly.
    """
    if kwargs:
        raise TypeError(
            f"tmax: unsupported keyword arguments {sorted(kwargs)}; only "
            f"'axis' (int or None) and 'keepdims' are supported")
    if axis is not None and not isinstance(axis, (int, np.integer)):
        raise TypeError(
            f"tmax: axis must be an int or None, got {axis!r} "
            f"(reduce one axis at a time)")
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> tuple:
        g, full = grad, data
        if not keepdims:
            if axis is None:
                full = np.asarray(data)  # 0-d; broadcasts against a.data
            else:
                g = np.expand_dims(g, axis=axis)
                full = np.expand_dims(data, axis=axis)
        mask = (a.data == full)
        # Split gradient equally between ties (rare for float activations).
        counts = mask.sum() if axis is None else mask.sum(axis=axis,
                                                          keepdims=True)
        return (g * mask / counts,)

    return Tensor._make(data, (a,), backward)


Tensor.sum = tsum
Tensor.mean = tmean
Tensor.max = tmax
Tensor.exp = exp
Tensor.log = log
Tensor.tanh = tanh
Tensor.sqrt = sqrt


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

def reshape(a: Tensor, *shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> tuple:
        return (grad.reshape(a.shape),)

    return Tensor._make(data, (a,), backward)


def transpose(a: Tensor, axes: Sequence[int]) -> Tensor:
    axes = tuple(axes)
    data = a.data.transpose(axes)
    inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> tuple:
        return (grad.transpose(inverse),)

    return Tensor._make(data, (a,), backward)


def _is_basic_index(index) -> bool:
    """True for indices where every selected element is distinct (ints /
    slices / ellipsis / newaxis), so the adjoint is a plain slice-assign."""
    basic = (int, np.integer, slice)
    if isinstance(index, basic) or index is None or index is Ellipsis:
        return True
    if isinstance(index, tuple):
        return all(isinstance(i, basic) or i is None or i is Ellipsis
                   for i in index)
    return False


def getitem(a: Tensor, index) -> Tensor:
    data = a.data[index]

    if _is_basic_index(index):
        def backward(grad: np.ndarray) -> tuple:
            full = np.zeros(a.shape, dtype=a.data.dtype)
            full[index] = grad
            return (full,)
    else:
        def backward(grad: np.ndarray) -> tuple:
            full = np.zeros(a.shape, dtype=a.data.dtype)
            np.add.at(full, index, grad)
            return (full,)

    return Tensor._make(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> tuple:
        pieces = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if not _needs_grad(tensor):
                pieces.append(None)
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(data, tuple(tensors), backward)


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    p = padding
    data = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad: np.ndarray) -> tuple:
        return (grad[:, :, p:-p, p:-p],)

    return Tensor._make(data, (a,), backward)


Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.__getitem__ = getitem


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    b = as_tensor(b)
    data = a.data @ b.data
    if profiler.profiling_active():
        # MACs = output elements * contraction length; 2 FLOPs per MAC.
        profiler.add_flops(2 * data.size * a.shape[-1], kind="matmul")

    def backward(grad: np.ndarray) -> tuple:
        ga = gb = None
        if a.ndim == b.ndim == 2:
            if _needs_grad(a):
                ga = grad @ b.data.T
            if _needs_grad(b):
                gb = a.data.T @ grad
        else:
            # Batched matmul with broadcasting.
            if _needs_grad(a):
                ga = _unbroadcast(grad @ np.swapaxes(b.data, -1, -2), a.shape)
            if _needs_grad(b):
                gb = _unbroadcast(np.swapaxes(a.data, -1, -2) @ grad, b.shape)
        return ga, gb

    return Tensor._make(data, (a, b), backward)


Tensor.__matmul__ = matmul
