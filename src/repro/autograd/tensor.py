"""Reverse-mode automatic differentiation on numpy arrays.

This module is the lowest layer of the PracMHBench reproduction: a compact
autograd engine that provides exactly the operations the model zoo needs
(dense/conv layers, normalisation, attention, losses).  The design follows the
classic tape-based approach: every :class:`Tensor` produced by an operation
stores its parents and a closure that accumulates gradients into them.

Only float computations are differentiated; integer label / index arrays are
passed around as plain numpy arrays.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from . import profiler

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (eval / inference)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should record the backward tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and backward tape entry.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a float
        numpy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype not in (np.float32, np.float64):
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output, wiring the tape only when grads are needed."""
        if profiler.profiling_active():
            profiler.add_activation_bytes(data.nbytes)
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                if node.requires_grad:
                    node._accumulate(node_grad)
                continue
            # Op node: run its backward closure, which routes parent grads
            # through the stash; merge them into the traversal state.
            node._backward(node_grad)
            for key, (parent, parent_grad) in _STASH.pending.items():
                if parent._backward is None:
                    if parent.requires_grad:
                        parent._accumulate(parent_grad)
                elif key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad
            _STASH.pending = {}


class _Stash:
    """Per-process scratch space used to route gradients during backward."""

    def __init__(self):
        self.pending: dict[int, tuple[Tensor, np.ndarray]] = {}

    def add(self, parent: Tensor, grad: np.ndarray) -> None:
        key = id(parent)
        if key in self.pending:
            stored_parent, stored = self.pending[key]
            self.pending[key] = (stored_parent, stored + grad)
        else:
            self.pending[key] = (parent, grad)


_STASH = _Stash()


def _send(parent: Tensor, grad: np.ndarray) -> None:
    """Route ``grad`` toward ``parent`` (used by every op backward)."""
    _STASH.add(parent, grad)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def _binary(a: Tensor, b, forward, grad_a, grad_b) -> Tensor:
    b = as_tensor(b)
    data = forward(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad or a._backward is not None:
            _send(a, _unbroadcast(grad_a(grad, a.data, b.data), a.shape))
        if b.requires_grad or b._backward is not None:
            _send(b, _unbroadcast(grad_b(grad, a.data, b.data), b.shape))

    return Tensor._make(data, (a, b), backward)


def _unary(a: Tensor, forward, grad_fn) -> Tensor:
    data = forward(a.data)

    def backward(grad: np.ndarray) -> None:
        _send(a, grad_fn(grad, a.data, data))

    return Tensor._make(data, (a,), backward)


def _add(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.add,
                   lambda g, x, y: g,
                   lambda g, x, y: g)


def _sub(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.subtract,
                   lambda g, x, y: g,
                   lambda g, x, y: -g)


def _mul(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.multiply,
                   lambda g, x, y: g * y,
                   lambda g, x, y: g * x)


def _div(a: Tensor, b) -> Tensor:
    return _binary(a, b, np.divide,
                   lambda g, x, y: g / y,
                   lambda g, x, y: -g * x / (y * y))


def _pow(a: Tensor, exponent: float) -> Tensor:
    return _unary(a, lambda x: np.power(x, exponent),
                  lambda g, x, out: g * exponent * np.power(x, exponent - 1))


def _neg(a: Tensor) -> Tensor:
    return _unary(a, np.negative, lambda g, x, out: -g)


Tensor.__add__ = _add
Tensor.__radd__ = _add
Tensor.__sub__ = _sub
Tensor.__rsub__ = lambda a, b: _add(_neg(a), b)
Tensor.__mul__ = _mul
Tensor.__rmul__ = _mul
Tensor.__truediv__ = _div
Tensor.__rtruediv__ = lambda a, b: _div(as_tensor(b), a)
Tensor.__pow__ = _pow
Tensor.__neg__ = _neg


# ----------------------------------------------------------------------
# Unary math
# ----------------------------------------------------------------------

def exp(a: Tensor) -> Tensor:
    return _unary(a, np.exp, lambda g, x, out: g * out)


def log(a: Tensor) -> Tensor:
    return _unary(a, np.log, lambda g, x, out: g / x)


def sqrt(a: Tensor) -> Tensor:
    return _unary(a, np.sqrt, lambda g, x, out: g * 0.5 / out)


def tanh(a: Tensor) -> Tensor:
    return _unary(a, np.tanh, lambda g, x, out: g * (1.0 - out * out))


def sigmoid(a: Tensor) -> Tensor:
    def fwd(x):
        return 1.0 / (1.0 + np.exp(-x))

    return _unary(a, fwd, lambda g, x, out: g * out * (1.0 - out))


def relu(a: Tensor) -> Tensor:
    return _unary(a, lambda x: np.maximum(x, 0.0),
                  lambda g, x, out: g * (x > 0))


def relu6(a: Tensor) -> Tensor:
    return _unary(a, lambda x: np.clip(x, 0.0, 6.0),
                  lambda g, x, out: g * ((x > 0) & (x < 6.0)))


def hardswish(a: Tensor) -> Tensor:
    """x * relu6(x + 3) / 6, the MobileNetV3 activation."""

    def fwd(x):
        return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0

    def grad_fn(g, x, out):
        inner = np.clip(x + 3.0, 0.0, 6.0)
        d = inner / 6.0 + x * ((x > -3.0) & (x < 3.0)) / 6.0
        return g * d

    return _unary(a, fwd, grad_fn)


def gelu(a: Tensor) -> Tensor:
    """Tanh-approximation GELU (as used by ALBERT/transformers)."""
    c = np.sqrt(2.0 / np.pi).astype(np.float32)

    def fwd(x):
        return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))

    def grad_fn(g, x, out):
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x * x)
        return g * (0.5 * (1.0 + t) + 0.5 * x * dt)

    return _unary(a, fwd, grad_fn)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def tsum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        _send(a, np.broadcast_to(g, a.shape).copy())

    return Tensor._make(data, (a,), backward)


def tmean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[i] for i in axis]))
    else:
        count = a.shape[axis]
    return tsum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def tmax(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = grad
        full = data
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
            full = np.expand_dims(data, axis=axis)
        mask = (a.data == full)
        # Split gradient equally between ties (rare for float activations).
        counts = mask.sum(axis=axis, keepdims=True)
        _send(a, g * mask / counts)

    return Tensor._make(data, (a,), backward)


Tensor.sum = tsum
Tensor.mean = tmean
Tensor.max = tmax
Tensor.exp = exp
Tensor.log = log
Tensor.tanh = tanh
Tensor.sqrt = sqrt


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

def reshape(a: Tensor, *shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        _send(a, grad.reshape(a.shape))

    return Tensor._make(data, (a,), backward)


def transpose(a: Tensor, axes: Sequence[int]) -> Tensor:
    axes = tuple(axes)
    data = a.data.transpose(axes)
    inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        _send(a, grad.transpose(inverse))

    return Tensor._make(data, (a,), backward)


def getitem(a: Tensor, index) -> Tensor:
    data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        _send(a, full)

    return Tensor._make(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            _send(tensor, grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    p = padding
    data = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad: np.ndarray) -> None:
        _send(a, grad[:, :, p:-p, p:-p])

    return Tensor._make(data, (a,), backward)


Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.__getitem__ = getitem


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    b = as_tensor(b)
    data = a.data @ b.data
    if profiler.profiling_active():
        # MACs = output elements * contraction length; 2 FLOPs per MAC.
        profiler.add_flops(2 * data.size * a.shape[-1], kind="matmul")

    def backward(grad: np.ndarray) -> None:
        if a.ndim == b.ndim == 2:
            _send(a, grad @ b.data.T)
            _send(b, a.data.T @ grad)
        else:
            # Batched matmul with broadcasting.
            ga = grad @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ grad
            _send(a, _unbroadcast(ga, a.shape))
            _send(b, _unbroadcast(gb, b.shape))

    return Tensor._make(data, (a, b), backward)


Tensor.__matmul__ = matmul
