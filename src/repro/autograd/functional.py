"""Neural-network operators built on the autograd :class:`Tensor`.

Includes the fused / structured operations that a layer library needs but that
are awkward to express with elementwise primitives: im2col convolution,
pooling, batch / layer normalisation, embeddings, softmax-family losses and
dropout.  Every operator here is covered by numerical gradient checks in
``tests/test_autograd.py`` and ``tests/test_autograd_fastpaths.py``.

The convolution hot path uses ``numpy.lib.stride_tricks.as_strided`` patch
*views* over the (padded) input: the only copy in the forward pass is the
single C-level reshape that lays the patches out for a batched BLAS GEMM —
and pointwise (1x1, stride 1) convolutions, which dominate the MobileNet
families, skip even that and run as pure reshaped matmuls.  Bias addition is
fused into the ``linear`` / ``conv2d`` output in place, so it never costs an
extra tape node or temporary.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from . import profiler
from .tensor import Tensor, _needs_grad

__all__ = [
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "batch_norm", "layer_norm", "embedding", "dropout",
    "softmax", "log_softmax", "cross_entropy", "soft_cross_entropy",
    "mse_loss", "linear",
]


# ----------------------------------------------------------------------
# im2col helpers (plain numpy)
# ----------------------------------------------------------------------

def _im2col_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy (N, C, kh, kw, oh, ow) patch view of NCHW ``x``.

    The view aliases ``x`` with overlapping windows — read-only use only.
    """
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return as_strided(x, shape=(n, c, kh, kw, oh, ow),
                      strides=(sn, sc, sh, sw, sh * stride, sw * stride))


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int,
            stride: int) -> np.ndarray:
    """Scatter-add patch gradients back into an NCHW array (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    return x


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """Grouped 2-D convolution on NCHW input.

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``;
    depthwise convolution is ``groups == in_channels``.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    if c % groups or oc % groups:
        raise ValueError(f"channels ({c}->{oc}) not divisible by groups={groups}")
    if cg != c // groups:
        raise ValueError(f"weight expects {cg} in-channels/group, input has {c // groups}")

    xd = x.data
    if padding:
        xd = np.pad(xd, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    hp, wp = xd.shape[2], xd.shape[3]
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    span = oh * ow
    ocg = oc // groups
    k = cg * kh * kw

    if profiler.profiling_active():
        macs = n * oc * oh * ow * cg * kh * kw
        profiler.add_flops(2 * macs, kind="conv2d")

    # Pointwise (1x1, stride 1) convs are pure channel mixes: the GEMM input
    # is just a reshape of the (padded) input — no patch copy at all.
    pointwise = (kh == 1 and kw == 1 and stride == 1)
    if pointwise:
        cols = xd.reshape(n, groups, k, span)
    else:
        view = _im2col_view(xd, kh, kw, stride)
        # The only copy of the forward pass: C-level gather into GEMM layout.
        cols = view.reshape(n, groups, k, span)

    if groups == 1:
        wmat = weight.data.reshape(oc, k)
        out = wmat @ cols.reshape(n, k, span)              # (n, oc, span)
    else:
        wmat = weight.data.reshape(groups, ocg, k)
        out = wmat @ cols                                   # (n, g, ocg, span)
    out = out.reshape(n, oc, oh, ow)
    if bias is not None:
        out += bias.data.reshape(1, oc, 1, 1)

    padded_shape = xd.shape

    def backward(grad: np.ndarray) -> tuple:
        dx = dw = db = None
        if groups == 1:
            g = grad.reshape(n, oc, span)
            if _needs_grad(weight):
                # Batched GEMM over stride views (no operand copies), then
                # reduce the batch axis.
                dw = np.matmul(g, cols.reshape(n, k, span).transpose(0, 2, 1))
                dw = dw.sum(axis=0).reshape(weight.shape)
            if _needs_grad(x):
                dcols = wmat.T @ g                          # (n, k, span)
        else:
            g = grad.reshape(n, groups, ocg, span)
            if _needs_grad(weight):
                dw = np.matmul(g, cols.transpose(0, 1, 3, 2)).sum(axis=0)
                dw = dw.reshape(weight.shape)
            if _needs_grad(x):
                dcols = np.matmul(wmat.transpose(0, 2, 1), g)
        if bias is not None and _needs_grad(bias):
            db = grad.sum(axis=(0, 2, 3))
        if _needs_grad(x):
            if pointwise:
                dxp = dcols.reshape(padded_shape)
            else:
                dxp = _col2im(dcols.reshape(n, c, kh, kw, oh, ow),
                              padded_shape, kh, kw, stride)
            dx = (dxp[:, :, padding:-padding, padding:-padding]
                  if padding else dxp)
        if bias is None:
            return dx, dw
        return dx, dw, db

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (stride == kernel); H, W must divide."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.max(axis=(3, 5))

    def backward(grad: np.ndarray) -> tuple:
        mask = view == out[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = grad[:, :, :, None, :, None] * mask / counts
        return (g.reshape(n, c, h, w),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (stride == kernel)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> tuple:
        g = grad[:, :, :, None, :, None] / (kernel * kernel)
        g = np.broadcast_to(g, (n, c, oh, kernel, ow, kernel))
        return (g.reshape(n, c, h, w),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes, producing (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))

    def backward(grad: np.ndarray) -> tuple:
        g = grad[:, :, None, None] / (h * w)
        return (np.broadcast_to(g, x.shape),)

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------

def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over NCHW (per-channel) or NC (per-feature) input.

    ``running_mean``/``running_var`` are updated **in place** in training
    mode, mirroring the usual framework contract.
    """
    if x.ndim == 4:
        axes: tuple[int, ...] = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * xhat + beta.data.reshape(shape)

    m = x.size // x.shape[1]

    def backward(grad: np.ndarray) -> tuple:
        dgamma = (grad * xhat).sum(axis=axes) if _needs_grad(gamma) else None
        dbeta = grad.sum(axis=axes) if _needs_grad(beta) else None
        dx = None
        if _needs_grad(x):
            if training:
                g_sum = grad.sum(axis=axes, keepdims=True)
                gx_sum = (grad * xhat).sum(axis=axes, keepdims=True)
                dx = (gamma.data.reshape(shape) * inv_std.reshape(shape) / m) * (
                    m * grad - g_sum - xhat * gx_sum)
            else:
                dx = grad * gamma.data.reshape(shape) * inv_std.reshape(shape)
        return dx, dgamma, dbeta

    return Tensor._make(out, (x, gamma, beta), backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean) * inv_std
    out = gamma.data * xhat + beta.data
    d = x.shape[-1]

    def backward(grad: np.ndarray) -> tuple:
        reduce_axes = tuple(range(x.ndim - 1))
        dgamma = ((grad * xhat).sum(axis=reduce_axes)
                  if _needs_grad(gamma) else None)
        dbeta = grad.sum(axis=reduce_axes) if _needs_grad(beta) else None
        dx = None
        if _needs_grad(x):
            gg = grad * gamma.data
            g_sum = gg.sum(axis=-1, keepdims=True)
            gx_sum = (gg * xhat).sum(axis=-1, keepdims=True)
            dx = (inv_std / d) * (d * gg - g_sum - xhat * gx_sum)
        return dx, dgamma, dbeta

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Embedding / linear
# ----------------------------------------------------------------------

def _scatter_add_rows(full: np.ndarray, idx: np.ndarray,
                      grad: np.ndarray) -> None:
    """``full[idx] += grad`` with correct duplicate handling.

    Uses sort + ``np.add.reduceat`` segment sums, which is far faster than
    ``np.add.at`` buffered scatter; duplicate-free index sets degenerate to a
    single slice-assign.
    """
    flat = idx.reshape(-1)
    if flat.size == 0:
        return
    rows = grad.reshape(flat.size, -1)
    order = np.argsort(flat, kind="stable")
    sorted_idx = flat[order]
    starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
    if starts.size == flat.size:  # all indices distinct: plain assignment
        full[flat] += rows
        return
    sums = np.add.reduceat(rows[order], starts, axis=0)
    full[sorted_idx[starts]] += sums


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by an integer index array."""
    idx = np.asarray(indices)
    out = weight.data[idx]

    def backward(grad: np.ndarray) -> tuple:
        full = np.zeros_like(weight.data)
        _scatter_add_rows(full, idx, grad)
        return (full,)

    return Tensor._make(out, (weight,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` of shape (out, in).

    Works for any leading batch shape; the contraction is over the last axis.
    The bias add is fused in place into the GEMM output.
    """
    out = x.data @ weight.data.T
    if profiler.profiling_active():
        profiler.add_flops(2 * out.size * x.shape[-1], kind="linear")
    if bias is not None:
        out += bias.data

    def backward(grad: np.ndarray) -> tuple:
        dx = dw = db = None
        g2 = grad.reshape(-1, weight.shape[0])
        if _needs_grad(weight):
            dw = g2.T @ x.data.reshape(-1, x.shape[-1])
        if bias is not None and _needs_grad(bias):
            db = g2.sum(axis=0)
        if _needs_grad(x):
            dx = (grad @ weight.data).reshape(x.shape)
        if bias is None:
            return dx, dw
        return dx, dw, db

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def _softmax_np(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def softmax(x: Tensor) -> Tensor:
    out = _softmax_np(x.data)

    def backward(grad: np.ndarray) -> tuple:
        dot = (grad * out).sum(axis=-1, keepdims=True)
        return (out * (grad - dot),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor) -> Tensor:
    z = x.data - x.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    out = z - lse

    def backward(grad: np.ndarray) -> tuple:
        soft = np.exp(out)
        return (grad - soft * grad.sum(axis=-1, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer ``labels``."""
    labels = np.asarray(labels)
    n = logits.shape[0]
    z = logits.data - logits.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    logp = z - lse

    loss = -logp[np.arange(n), labels].mean()

    def backward(grad: np.ndarray) -> tuple:
        soft = np.exp(logp)
        soft[np.arange(n), labels] -= 1.0
        soft *= grad / n
        return (soft,)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against a fixed soft target distribution.

    Gradient-equivalent to ``KL(target || softmax(logits))``; this is the
    distillation loss used by DepthFL, InclusiveFL and Fed-ET.
    """
    target = np.asarray(target_probs, dtype=logits.dtype)
    n = logits.shape[0]
    z = logits.data - logits.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    logp = z - lse
    loss = -(target * logp).sum(axis=-1).mean()

    def backward(grad: np.ndarray) -> tuple:
        soft = np.exp(logp)
        return (grad * (soft - target) / n,)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error against a fixed target array."""
    target = np.asarray(target.data if isinstance(target, Tensor) else target,
                        dtype=pred.dtype)
    diff = pred.data - target
    loss = np.asarray((diff * diff).mean(), dtype=pred.dtype)

    def backward(grad: np.ndarray) -> tuple:
        return (grad * 2.0 * diff / diff.size,)

    return Tensor._make(loss, (pred,), backward)


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity in eval mode or when ``p == 0``.

    ``rng`` is required when the mask is actually drawn: sampling from an
    implicit fresh generator would silently break run reproducibility.  Use
    :class:`repro.nn.layers.Dropout`, which owns a seeded generator.
    """
    if not training or p <= 0.0:
        return x
    if rng is None:
        raise ValueError(
            "dropout with training=True requires an explicit "
            "numpy.random.Generator (rng=...); an implicit fresh generator "
            "would make runs irreproducible — thread the owning layer's "
            "seeded RNG (see repro.nn.layers.Dropout)")
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward(grad: np.ndarray) -> tuple:
        return (grad * mask,)

    return Tensor._make(x.data * mask, (x,), backward)
