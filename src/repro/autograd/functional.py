"""Neural-network operators built on the autograd :class:`Tensor`.

Includes the fused / structured operations that a layer library needs but that
are awkward to express with elementwise primitives: im2col convolution,
pooling, batch / layer normalisation, embeddings, softmax-family losses and
dropout.  Every operator here is covered by numerical gradient checks in
``tests/test_autograd.py``.
"""

from __future__ import annotations

import numpy as np

from . import profiler
from .tensor import Tensor, _send, as_tensor, is_grad_enabled

__all__ = [
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "batch_norm", "layer_norm", "embedding", "dropout",
    "softmax", "log_softmax", "cross_entropy", "soft_cross_entropy",
    "mse_loss", "linear",
]


# ----------------------------------------------------------------------
# im2col helpers (plain numpy)
# ----------------------------------------------------------------------

def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Rearrange NCHW ``x`` into (N, C, kh, kw, oh, ow) patch views (copy)."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int,
            stride: int) -> np.ndarray:
    """Scatter-add patch gradients back into an NCHW array (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    return x


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """Grouped 2-D convolution on NCHW input.

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``;
    depthwise convolution is ``groups == in_channels``.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    if c % groups or oc % groups:
        raise ValueError(f"channels ({c}->{oc}) not divisible by groups={groups}")
    if cg != c // groups:
        raise ValueError(f"weight expects {cg} in-channels/group, input has {c // groups}")

    xd = x.data
    if padding:
        xd = np.pad(xd, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (xd.shape[2] - kh) // stride + 1
    ow = (xd.shape[3] - kw) // stride + 1

    if profiler.profiling_active():
        macs = n * oc * oh * ow * (c // groups) * kh * kw
        profiler.add_flops(2 * macs, kind="conv2d")
    cols = _im2col(xd, kh, kw, stride)                       # (N,C,kh,kw,oh,ow)
    ocg = oc // groups
    cols_g = cols.reshape(n, groups, cg * kh * kw, oh * ow)
    wmat = weight.data.reshape(groups, ocg, cg * kh * kw)
    out = np.einsum("gok,ngkl->ngol", wmat, cols_g, optimize=True)
    out = out.reshape(n, oc, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, oc, 1, 1)

    padded_shape = xd.shape

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(n, groups, ocg, oh * ow)
        dw = np.einsum("ngol,ngkl->gok", g, cols_g, optimize=True)
        _send(weight, dw.reshape(weight.shape))
        if bias is not None:
            _send(bias, grad.sum(axis=(0, 2, 3)))
        dcols = np.einsum("gok,ngol->ngkl", wmat, g, optimize=True)
        dcols = dcols.reshape(n, c, kh, kw, oh, ow)
        dxp = _col2im(dcols, padded_shape, kh, kw, stride)
        if padding:
            dxp = dxp[:, :, padding:-padding, padding:-padding]
        _send(x, dxp)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (stride == kernel); H, W must divide."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.max(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        mask = view == out[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = grad[:, :, :, None, :, None] * mask / counts
        _send(x, g.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (stride == kernel)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        g = grad[:, :, :, None, :, None] / (kernel * kernel)
        g = np.broadcast_to(g, (n, c, oh, kernel, ow, kernel))
        _send(x, g.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes, producing (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))

    def backward(grad: np.ndarray) -> None:
        g = grad[:, :, None, None] / (h * w)
        _send(x, np.broadcast_to(g, x.shape).copy())

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------

def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over NCHW (per-channel) or NC (per-feature) input.

    ``running_mean``/``running_var`` are updated **in place** in training
    mode, mirroring the usual framework contract.
    """
    if x.ndim == 4:
        axes: tuple[int, ...] = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * xhat + beta.data.reshape(shape)

    m = x.size // x.shape[1]

    def backward(grad: np.ndarray) -> None:
        _send(gamma, (grad * xhat).sum(axis=axes))
        _send(beta, grad.sum(axis=axes))
        if training:
            g_sum = grad.sum(axis=axes, keepdims=True)
            gx_sum = (grad * xhat).sum(axis=axes, keepdims=True)
            dx = (gamma.data.reshape(shape) * inv_std.reshape(shape) / m) * (
                m * grad - g_sum - xhat * gx_sum)
        else:
            dx = grad * gamma.data.reshape(shape) * inv_std.reshape(shape)
        _send(x, dx)

    return Tensor._make(out, (x, gamma, beta), backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean) * inv_std
    out = gamma.data * xhat + beta.data
    d = x.shape[-1]

    def backward(grad: np.ndarray) -> None:
        reduce_axes = tuple(range(x.ndim - 1))
        _send(gamma, (grad * xhat).sum(axis=reduce_axes))
        _send(beta, grad.sum(axis=reduce_axes))
        gg = grad * gamma.data
        g_sum = gg.sum(axis=-1, keepdims=True)
        gx_sum = (gg * xhat).sum(axis=-1, keepdims=True)
        dx = (inv_std / d) * (d * gg - g_sum - xhat * gx_sum)
        _send(x, dx)

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Embedding / linear
# ----------------------------------------------------------------------

def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by an integer index array."""
    idx = np.asarray(indices)
    out = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, grad)
        _send(weight, full)

    return Tensor._make(out, (weight,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` of shape (out, in).

    Works for any leading batch shape; the contraction is over the last axis.
    """
    out = x.data @ weight.data.T
    if profiler.profiling_active():
        profiler.add_flops(2 * out.size * x.shape[-1], kind="linear")
    if bias is not None:
        out = out + bias.data

    def backward(grad: np.ndarray) -> None:
        x2 = x.data.reshape(-1, x.shape[-1])
        g2 = grad.reshape(-1, weight.shape[0])
        _send(weight, g2.T @ x2)
        if bias is not None:
            _send(bias, g2.sum(axis=0))
        _send(x, (grad @ weight.data).reshape(x.shape))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def _softmax_np(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def softmax(x: Tensor) -> Tensor:
    out = _softmax_np(x.data)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out).sum(axis=-1, keepdims=True)
        _send(x, out * (grad - dot))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor) -> Tensor:
    z = x.data - x.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    out = z - lse

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(out)
        _send(x, grad - soft * grad.sum(axis=-1, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer ``labels``."""
    labels = np.asarray(labels)
    n = logits.shape[0]
    z = logits.data - logits.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    logp = z - lse
    loss = -logp[np.arange(n), labels].mean()

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(logp)
        soft[np.arange(n), labels] -= 1.0
        _send(logits, grad * soft / n)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against a fixed soft target distribution.

    Gradient-equivalent to ``KL(target || softmax(logits))``; this is the
    distillation loss used by DepthFL, InclusiveFL and Fed-ET.
    """
    target = np.asarray(target_probs, dtype=logits.dtype)
    n = logits.shape[0]
    z = logits.data - logits.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    logp = z - lse
    loss = -(target * logp).sum(axis=-1).mean()

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(logp)
        _send(logits, grad * (soft - target) / n)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error against a fixed target array."""
    target = np.asarray(target.data if isinstance(target, Tensor) else target,
                        dtype=pred.dtype)
    diff = pred.data - target
    loss = np.asarray((diff * diff).mean(), dtype=pred.dtype)

    def backward(grad: np.ndarray) -> None:
        _send(pred, grad * 2.0 * diff / diff.size)

    return Tensor._make(loss, (pred,), backward)


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity in eval mode or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        _send(x, grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)
