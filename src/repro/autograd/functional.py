"""Neural-network operators built on the autograd :class:`Tensor`.

Includes the fused / structured operations that a layer library needs but that
are awkward to express with elementwise primitives: im2col convolution,
pooling, batch / layer normalisation, embeddings, softmax-family losses and
dropout.  Every operator here is covered by numerical gradient checks in
``tests/test_autograd.py`` and ``tests/test_autograd_fastpaths.py``.

The convolution hot path uses ``numpy.lib.stride_tricks.as_strided`` patch
*views* over the (padded) input: the only copy in the forward pass is the
single C-level reshape that lays the patches out for a batched BLAS GEMM —
and pointwise (1x1, stride 1) convolutions, which dominate the MobileNet
families, skip even that and run as pure reshaped matmuls.  Bias addition is
fused into the ``linear`` / ``conv2d`` output in place, so it never costs an
extra tape node or temporary.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from . import plan as _plan
from . import profiler
from .tensor import Tensor, _needs_grad

__all__ = [
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "batch_norm", "layer_norm", "embedding", "dropout", "attention",
    "softmax", "log_softmax", "cross_entropy", "soft_cross_entropy",
    "mse_loss", "linear",
]


# ----------------------------------------------------------------------
# im2col helpers (plain numpy)
# ----------------------------------------------------------------------

def _im2col_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy (N, C, kh, kw, oh, ow) patch view of NCHW ``x``.

    The view aliases ``x`` with overlapping windows — read-only use only.
    """
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return as_strided(x, shape=(n, c, kh, kw, oh, ow),
                      strides=(sn, sc, sh, sw, sh * stride, sw * stride))


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int,
            stride: int, pad: int = 0) -> np.ndarray:
    """Scatter-add patch gradients back into an NCHW array (im2col adjoint).

    ``x_shape`` is the *unpadded* target; a non-zero ``pad`` folds the
    un-padding into the scatter by clipping each kernel offset's slice, so
    the padded intermediate (and the extra slice copy to strip it) never
    exists.  Per kernel offset the accumulation order matches the padded
    formulation exactly — results are bit-identical.

    Non-overlapping windows (``stride >= kernel``, unpadded) write disjoint
    pixels, so the adjoint is ``kh*kw`` plain strided *assignments* into
    uninitialised memory — no zero fill, no read-modify-write passes.
    Overlapping windows keep the ``kh*kw`` strided-add loop: each pass is a
    dense slice add over the full batch, which beats gather/
    ``np.add.reduceat`` formulations whose per-segment ufunc dispatch
    dominates at the tiny (``kh*kw``-element) segment sizes conv gradients
    produce.
    """
    n, c, h, w = x_shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1

    if pad == 0 and stride >= kh and stride >= kw:
        x = np.empty(x_shape, dtype=cols.dtype)
        if not (stride == kh == kw and h == stride * oh and w == stride * ow):
            x[...] = 0.0  # windows don't tile the image: gaps stay zero
        for i in range(kh):
            i_end = i + stride * oh
            for j in range(kw):
                j_end = j + stride * ow
                x[:, :, i:i_end:stride, j:j_end:stride] = cols[:, :, i, j]
        return x

    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        # Output rows oy with 0 <= i - pad + stride*oy < h.
        oy0 = max(0, (pad - i + stride - 1) // stride)
        oy1 = min(oh, (h - 1 - i + pad) // stride + 1)
        if oy1 <= oy0:
            continue
        ys = i - pad + stride * oy0
        ye = i - pad + stride * (oy1 - 1) + 1
        for j in range(kw):
            ox0 = max(0, (pad - j + stride - 1) // stride)
            ox1 = min(ow, (w - 1 - j + pad) // stride + 1)
            if ox1 <= ox0:
                continue
            xs = j - pad + stride * ox0
            xe = j - pad + stride * (ox1 - 1) + 1
            x[:, :, ys:ye:stride, xs:xe:stride] += \
                cols[:, :, i, j, oy0:oy1, ox0:ox1]
    return x


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """Grouped 2-D convolution on NCHW input.

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``;
    depthwise convolution is ``groups == in_channels``.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    if c % groups or oc % groups:
        raise ValueError(f"channels ({c}->{oc}) not divisible by groups={groups}")
    if cg != c // groups:
        raise ValueError(f"weight expects {cg} in-channels/group, input has {c // groups}")

    xd = x.data
    if padding:
        # Manual zero-fill + centre assignment: np.pad's generic machinery
        # costs ~4x as much for this (constant, symmetric, 2-axis) case.
        padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                          dtype=xd.dtype)
        padded[:, :, padding:-padding, padding:-padding] = xd
        xd = padded
    hp, wp = xd.shape[2], xd.shape[3]
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    span = oh * ow
    ocg = oc // groups
    k = cg * kh * kw

    if profiler.profiling_active():
        macs = n * oc * oh * ow * cg * kh * kw
        profiler.add_flops(2 * macs, kind="conv2d")
        profiler.add_gemm_calls(n if groups == 1 else n * groups)

    # Pointwise (1x1, stride 1) convs are pure channel mixes: the GEMM input
    # is just a reshape of the (padded) input — no patch copy at all.
    pointwise = (kh == 1 and kw == 1 and stride == 1)
    if pointwise:
        cols = xd.reshape(n, groups, k, span)
    else:
        view = _im2col_view(xd, kh, kw, stride)
        # The only copy of the forward pass: C-level gather into GEMM
        # layout.  The destination comes from the step-plan arena when one
        # is active, so repeated steps recycle the (largest) conv buffers.
        buf = _plan.workspace((n, c, kh, kw, oh, ow), xd.dtype)
        np.copyto(buf, view)
        cols = buf.reshape(n, groups, k, span)

    if groups == 1:
        wmat = weight.data.reshape(oc, k)
        out = wmat @ cols.reshape(n, k, span)              # (n, oc, span)
    else:
        wmat = weight.data.reshape(groups, ocg, k)
        out = wmat @ cols                                   # (n, g, ocg, span)
    out = out.reshape(n, oc, oh, ow)
    if bias is not None:
        out += bias.data.reshape(1, oc, 1, 1)

    padded_shape = xd.shape

    def backward(grad: np.ndarray) -> tuple:
        dx = dw = db = None
        if groups == 1:
            g = grad.reshape(n, oc, span)
            if _needs_grad(weight):
                # Batched GEMM over stride views (no operand copies), then
                # reduce the batch axis.
                dw = np.matmul(g, cols.reshape(n, k, span).transpose(0, 2, 1))
                dw = dw.sum(axis=0).reshape(weight.shape)
                if profiler.profiling_active():
                    profiler.add_gemm_calls(n)
            if _needs_grad(x):
                dcols = wmat.T @ g                          # (n, k, span)
                if profiler.profiling_active():
                    profiler.add_gemm_calls(n)
        elif ocg == 1:
            # Depthwise (one output channel per group): each dcols "GEMM"
            # is (k,1)@(1,span) — an outer product — so batched matmul
            # would dispatch n*groups tiny kernels with no arithmetic
            # intensity; one broadcast multiply is ~2.5x faster and
            # bit-identical.  dw stays a batched GEMM: its (1,span)@(span,k)
            # row-matrix products batch well, and every einsum/multiply-sum
            # reformulation measured slower.
            g = grad.reshape(n, groups, ocg, span)
            if _needs_grad(weight):
                dw = np.matmul(g, cols.transpose(0, 1, 3, 2)).sum(axis=0)
                dw = dw.reshape(weight.shape)
                if profiler.profiling_active():
                    profiler.add_gemm_calls(n * groups)
            if _needs_grad(x):
                dcols = (wmat.reshape(1, groups, k, 1)
                         * grad.reshape(n, groups, 1, span))
        else:
            g = grad.reshape(n, groups, ocg, span)
            if _needs_grad(weight):
                dw = np.matmul(g, cols.transpose(0, 1, 3, 2)).sum(axis=0)
                dw = dw.reshape(weight.shape)
                if profiler.profiling_active():
                    profiler.add_gemm_calls(n * groups)
            if _needs_grad(x):
                dcols = np.matmul(wmat.transpose(0, 2, 1), g)
                if profiler.profiling_active():
                    profiler.add_gemm_calls(n * groups)
        if bias is not None and _needs_grad(bias):
            db = grad.sum(axis=(0, 2, 3))
        if _needs_grad(x):
            if pointwise:
                dxp = dcols.reshape(padded_shape)
                dx = (dxp[:, :, padding:-padding, padding:-padding]
                      if padding else dxp)
            else:
                # col2im scatters straight into the unpadded gradient.
                dx = _col2im(dcols.reshape(n, c, kh, kw, oh, ow),
                             (n, c, h, w), kh, kw, stride, pad=padding)
        if bias is None:
            return dx, dw
        return dx, dw, db

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (stride == kernel); H, W must divide."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.max(axis=(3, 5))

    def backward(grad: np.ndarray) -> tuple:
        mask = view == out[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = grad[:, :, :, None, :, None] * mask / counts
        return (g.reshape(n, c, h, w),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (stride == kernel)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> tuple:
        # Materialise the broadcast directly into a C-contiguous buffer
        # (broadcast_to(...).reshape(...) forced the same copy *plus* an
        # intermediate; 0-stride views also hit slow paths downstream).
        g = grad[:, :, :, None, :, None] / (kernel * kernel)
        full = np.empty((n, c, h, w), dtype=g.dtype)
        full.reshape(n, c, oh, kernel, ow, kernel)[...] = g
        return (full,)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes, producing (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))

    def backward(grad: np.ndarray) -> tuple:
        full = np.empty(x.shape, dtype=grad.dtype)
        full[...] = grad[:, :, None, None] / (h * w)
        return (full,)

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------

def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over NCHW (per-channel) or NC (per-feature) input.

    ``running_mean``/``running_var`` are updated **in place** in training
    mode, mirroring the usual framework contract.
    """
    if x.ndim == 4:
        axes: tuple[int, ...] = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * xhat + beta.data.reshape(shape)

    m = x.size // x.shape[1]

    def backward(grad: np.ndarray) -> tuple:
        dgamma = (grad * xhat).sum(axis=axes) if _needs_grad(gamma) else None
        dbeta = grad.sum(axis=axes) if _needs_grad(beta) else None
        dx = None
        if _needs_grad(x):
            if training:
                g_sum = grad.sum(axis=axes, keepdims=True)
                gx_sum = (grad * xhat).sum(axis=axes, keepdims=True)
                dx = (gamma.data.reshape(shape) * inv_std.reshape(shape) / m) * (
                    m * grad - g_sum - xhat * gx_sum)
            else:
                dx = grad * gamma.data.reshape(shape) * inv_std.reshape(shape)
        return dx, dgamma, dbeta

    return Tensor._make(out, (x, gamma, beta), backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean) * inv_std
    out = gamma.data * xhat + beta.data
    d = x.shape[-1]

    def backward(grad: np.ndarray) -> tuple:
        reduce_axes = tuple(range(x.ndim - 1))
        dgamma = ((grad * xhat).sum(axis=reduce_axes)
                  if _needs_grad(gamma) else None)
        dbeta = grad.sum(axis=reduce_axes) if _needs_grad(beta) else None
        dx = None
        if _needs_grad(x):
            gg = grad * gamma.data
            g_sum = gg.sum(axis=-1, keepdims=True)
            gx_sum = (gg * xhat).sum(axis=-1, keepdims=True)
            dx = (inv_std / d) * (d * gg - g_sum - xhat * gx_sum)
        return dx, dgamma, dbeta

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Embedding / linear
# ----------------------------------------------------------------------

def _scatter_add_rows(full: np.ndarray, idx: np.ndarray,
                      grad: np.ndarray) -> None:
    """``full[idx] += grad`` with correct duplicate handling.

    Uses sort + ``np.add.reduceat`` segment sums, which is far faster than
    ``np.add.at`` buffered scatter; duplicate-free index sets degenerate to a
    single slice-assign.
    """
    flat = idx.reshape(-1)
    if flat.size == 0:
        return
    rows = grad.reshape(flat.size, -1)
    order = np.argsort(flat, kind="stable")
    sorted_idx = flat[order]
    starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
    if starts.size == flat.size:  # all indices distinct: plain assignment
        full[flat] += rows
        return
    sums = np.add.reduceat(rows[order], starts, axis=0)
    full[sorted_idx[starts]] += sums


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by an integer index array."""
    idx = np.asarray(indices)
    out = weight.data[idx]

    def backward(grad: np.ndarray) -> tuple:
        full = np.zeros_like(weight.data)
        _scatter_add_rows(full, idx, grad)
        return (full,)

    return Tensor._make(out, (weight,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` of shape (out, in).

    Works for any leading batch shape; the contraction is over the last axis.
    The bias add is fused in place into the GEMM output.
    """
    out = x.data @ weight.data.T
    if profiler.profiling_active():
        profiler.add_flops(2 * out.size * x.shape[-1], kind="linear")
    if bias is not None:
        out += bias.data

    def backward(grad: np.ndarray) -> tuple:
        dx = dw = db = None
        g2 = grad.reshape(-1, weight.shape[0])
        if _needs_grad(weight):
            dw = g2.T @ x.data.reshape(-1, x.shape[-1])
        if bias is not None and _needs_grad(bias):
            db = g2.sum(axis=0)
        if _needs_grad(x):
            dx = (grad @ weight.data).reshape(x.shape)
        if bias is None:
            return dx, dw
        return dx, dw, db

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def _shifted_exp(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared max-shift stage of the softmax family.

    Returns ``(z, e, esum)`` where ``z = x - rowmax``, ``e = exp(z)`` and
    ``esum`` is the last-axis sum of ``e`` (keepdims).  Softmax is
    ``e / esum``; log-softmax is ``z - log(esum)``.
    """
    z = x - x.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return z, e, e.sum(axis=-1, keepdims=True)


def _softmax_np(x: np.ndarray) -> np.ndarray:
    _, e, esum = _shifted_exp(x)
    return e / esum


def softmax(x: Tensor) -> Tensor:
    out = _softmax_np(x.data)

    def backward(grad: np.ndarray) -> tuple:
        dot = (grad * out).sum(axis=-1, keepdims=True)
        return (out * (grad - dot),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor) -> Tensor:
    z, _, esum = _shifted_exp(x.data)
    out = z - np.log(esum)

    def backward(grad: np.ndarray) -> tuple:
        # ``np.exp(out)``, not ``e / esum``: the two round differently in the
        # last bit and pinned histories require the exp(log_softmax) form.
        soft = np.exp(out)
        return (grad - soft * grad.sum(axis=-1, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer ``labels``."""
    labels = np.asarray(labels)
    n = logits.shape[0]
    z, _, esum = _shifted_exp(logits.data)
    logp = z - np.log(esum)

    loss = -logp[np.arange(n), labels].mean()

    def backward(grad: np.ndarray) -> tuple:
        # exp(logp) rather than e / esum for bit-identity with pinned runs.
        soft = np.exp(logp)
        soft[np.arange(n), labels] -= 1.0
        soft *= grad / n
        return (soft,)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against a fixed soft target distribution.

    Gradient-equivalent to ``KL(target || softmax(logits))``; this is the
    distillation loss used by DepthFL, InclusiveFL and Fed-ET.
    """
    target = np.asarray(target_probs, dtype=logits.dtype)
    n = logits.shape[0]
    z, _, esum = _shifted_exp(logits.data)
    logp = z - np.log(esum)
    loss = -(target * logp).sum(axis=-1).mean()

    def backward(grad: np.ndarray) -> tuple:
        # exp(logp) rather than e / esum for bit-identity with pinned runs.
        soft = np.exp(logp)
        soft -= target
        soft *= grad
        soft /= n
        return (soft,)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error against a fixed target array."""
    target = np.asarray(target.data if isinstance(target, Tensor) else target,
                        dtype=pred.dtype)
    diff = pred.data - target
    loss = np.asarray((diff * diff).mean(), dtype=pred.dtype)

    def backward(grad: np.ndarray) -> tuple:
        return (grad * 2.0 * diff / diff.size,)

    return Tensor._make(loss, (pred,), backward)


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------

def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity in eval mode or when ``p == 0``.

    ``rng`` is required when the mask is actually drawn: sampling from an
    implicit fresh generator would silently break run reproducibility.  Use
    :class:`repro.nn.layers.Dropout`, which owns a seeded generator.
    """
    if not training or p <= 0.0:
        return x
    if rng is None:
        raise ValueError(
            "dropout with training=True requires an explicit "
            "numpy.random.Generator (rng=...); an implicit fresh generator "
            "would make runs irreproducible — thread the owning layer's "
            "seeded RNG (see repro.nn.layers.Dropout)")
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward(grad: np.ndarray) -> tuple:
        return (grad * mask,)

    return Tensor._make(x.data * mask, (x,), backward)


# ----------------------------------------------------------------------
# Fused attention
# ----------------------------------------------------------------------

def attention(q: Tensor, k: Tensor, v: Tensor, scale: float,
              rng: np.random.Generator | None = None, p: float = 0.0,
              training: bool = False) -> Tensor:
    """Fused scaled-dot-product attention: ``softmax(q @ kᵀ * scale) @ v``.

    One tape node with a closed-form backward, replacing the five-node
    matmul/scale/softmax/dropout/matmul chain: the ``(B, H, S, S)`` score
    matrix is built once, softmaxed **in place**, and only the attention
    weights (plus the dropout mask when active) survive into the closure —
    no per-node score/transpose temporaries on the tape.  ``scale`` is
    applied as a python float, so float32 inputs stay float32 (a 0-d
    float64 scale array would promote the whole chain under NEP 50).

    ``rng``/``p`` fuse inverted dropout on the attention weights; the mask
    is drawn exactly like :func:`dropout` would on the softmax output, so
    the RNG stream matches the composed-primitive formulation bit for bit.
    """
    qd, kd, vd = q.data, k.data, v.data
    scale = float(scale)
    drop = training and p > 0.0
    if drop and rng is None:
        raise ValueError(
            "attention with dropout (training=True, p > 0) requires an "
            "explicit numpy.random.Generator (rng=...); see dropout()")

    weights = np.matmul(qd, np.swapaxes(kd, -1, -2))   # (B, H, S, S)
    weights *= scale
    weights -= weights.max(axis=-1, keepdims=True)
    np.exp(weights, out=weights)
    weights /= weights.sum(axis=-1, keepdims=True)

    if drop:
        mask = (rng.random(weights.shape) >= p).astype(weights.dtype)
        mask /= (1.0 - p)
        out = np.matmul(weights * mask, vd)             # (B, H, S, Dh)
    else:
        mask = None
        out = np.matmul(weights, vd)

    if profiler.profiling_active():
        # Two batched GEMMs (scores and context), 2 FLOPs per MAC each.
        batch = int(np.prod(out.shape[:-2], dtype=np.int64))
        s, dh = out.shape[-2], vd.shape[-1]
        profiler.add_flops(4 * batch * s * weights.shape[-1] * dh,
                           kind="attention")
        profiler.add_gemm_calls(2 * batch)

    def backward(grad: np.ndarray) -> tuple:
        dq = dk = dv = None
        w_used = weights if mask is None else weights * mask
        if _needs_grad(v):
            dv = np.matmul(np.swapaxes(w_used, -1, -2), grad)
        if _needs_grad(q) or _needs_grad(k):
            dw = np.matmul(grad, np.swapaxes(vd, -1, -2))
            if mask is not None:
                dw *= mask
            # Softmax VJP folded in, then the scale (also a python float).
            dot = (dw * weights).sum(axis=-1, keepdims=True)
            dscores = weights * (dw - dot)
            dscores *= scale
            if _needs_grad(q):
                dq = np.matmul(dscores, kd)
            if _needs_grad(k):
                dk = np.matmul(np.swapaxes(dscores, -1, -2), qd)
        return dq, dk, dv

    return Tensor._make(out, (q, k, v), backward)
