"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every operator the model zoo relies on:
compare the analytic gradient produced by :meth:`Tensor.backward` against a
central-difference estimate.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "compare_gradients"]


def numerical_gradient(fn: Callable[[], Tensor], param: Tensor,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn().item()
        flat[i] = original - eps
        lower = fn().item()
        flat[i] = original
        gflat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], params: Sequence[Tensor],
                    atol: float = 1e-2, rtol: float = 5e-2,
                    eps: float = 1e-3) -> None:
    """Assert analytic and numerical gradients agree for every parameter.

    ``fn`` must rebuild the graph on each call (so perturbed parameters take
    effect) and return a scalar loss tensor.
    """
    for param in params:
        param.zero_grad()
    loss = fn()
    loss.backward()
    for index, param in enumerate(params):
        assert param.grad is not None, f"param {index} received no gradient"
        numeric = numerical_gradient(fn, param, eps=eps)
        analytic = param.grad.astype(np.float64)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for param {index} (shape {param.shape}): "
                f"max abs diff {worst:.3e}")


def compare_gradients(fn_a: Callable[[], Tensor], fn_b: Callable[[], Tensor],
                      params: Sequence[Tensor],
                      atol: float = 1e-5, rtol: float = 1e-5) -> None:
    """Assert two graph builders produce identical outputs *and* gradients.

    Used to validate a fast-path implementation against a reference one: both
    callables must build a scalar loss over the same ``params``.
    """
    grads: list[list[np.ndarray]] = []
    outputs: list[float] = []
    for fn in (fn_a, fn_b):
        for param in params:
            param.zero_grad()
        loss = fn()
        loss.backward()
        outputs.append(loss.item())
        for index, param in enumerate(params):
            assert param.grad is not None, f"param {index} received no gradient"
        grads.append([param.grad.copy() for param in params])
    np.testing.assert_allclose(outputs[0], outputs[1], atol=atol, rtol=rtol,
                               err_msg="forward outputs differ")
    for index, (ga, gb) in enumerate(zip(*grads)):
        np.testing.assert_allclose(
            ga, gb, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for param {index}")
