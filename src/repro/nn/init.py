"""Weight initialisers (explicit RNG for deterministic construction)."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal", "zeros", "ones"]


def kaiming_uniform(shape: tuple[int, ...], fan_in: int,
                    rng: np.random.Generator) -> np.ndarray:
    """He-uniform init used for conv / linear weights feeding ReLU."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init used for attention / embedding projections."""
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], std: float,
           rng: np.random.Generator) -> np.ndarray:
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
