"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator

from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x):
        for module in self:
            x = module(x)
        return x


class ModuleList(Module):
    """List-like container; children are registered but not auto-called."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._order: list[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its children")
