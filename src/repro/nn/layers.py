"""Core layers of the nn library.

Every layer that owns width-scalable parameters exposes ``scale_in`` /
``scale_out`` flags: they declare which axes of the parameter tensors shrink
when the owning model is rebuilt at a smaller width multiplier.  The
width-heterogeneity algorithms (Fjord, SHeteroFL, FedRolex) use this metadata
to build per-parameter index maps between the global model and a sub-model.
"""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from ..autograd import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d", "LayerNorm",
           "Embedding", "Dropout", "Identity",
           "ReLU", "ReLU6", "HardSwish", "GELU", "Sigmoid", "activation"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True,
                 scale_in: bool = True, scale_out: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        axes = tuple(axis for axis, flag in ((0, scale_out), (1, scale_in)) if flag)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            scale_axes=axes)
        if bias:
            self.bias = Parameter(init.zeros((out_features,)),
                                  scale_axes=(0,) if scale_out else ())
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ag.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """Grouped 2-D convolution (square kernels, symmetric padding)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 groups: int = 1, bias: bool = False,
                 scale_in: bool = True, scale_out: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        # Depthwise conv weight is (C, 1, k, k): only axis 0 tracks width.
        if groups == 1:
            axes = tuple(a for a, f in ((0, scale_out), (1, scale_in)) if f)
        else:
            axes = (0,) if scale_out else ()
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in, rng),
            scale_axes=axes)
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)),
                                  scale_axes=(0,) if scale_out else ())
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ag.conv2d(x, self.weight, self.bias, stride=self.stride,
                         padding=self.padding, groups=self.groups)


class _BatchNorm(Module):
    """Shared implementation for 1-D / 2-D batch normalisation."""

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5, scale: bool = True):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        axes = (0,) if scale else ()
        self.weight = Parameter(init.ones((num_features,)), scale_axes=axes)
        self.bias = Parameter(init.zeros((num_features,)), scale_axes=axes)
        self.register_buffer("running_mean", init.zeros((num_features,)),
                             scale_axes=axes)
        self.register_buffer("running_var", init.ones((num_features,)),
                             scale_axes=axes)

    def forward(self, x: Tensor) -> Tensor:
        return ag.batch_norm(x, self.weight, self.bias, self.running_mean,
                             self.running_var, training=self.training,
                             momentum=self.momentum, eps=self.eps)


class BatchNorm2d(_BatchNorm):
    """Per-channel batch norm for NCHW feature maps."""


class BatchNorm1d(_BatchNorm):
    """Per-feature batch norm for NC inputs."""


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5, scale: bool = True):
        super().__init__()
        self.dim = dim
        self.eps = eps
        axes = (0,) if scale else ()
        self.weight = Parameter(init.ones((dim,)), scale_axes=axes)
        self.bias = Parameter(init.zeros((dim,)), scale_axes=axes)

    def forward(self, x: Tensor) -> Tensor:
        return ag.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Token embedding table (vocab is never width-scaled; dim may be)."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator,
                 scale_out: bool = True):
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(init.normal((vocab_size, dim), 0.02, rng),
                                scale_axes=(1,) if scale_out else ())

    def forward(self, indices: np.ndarray) -> Tensor:
        return ag.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout with an owned RNG (deterministic given the seed).

    Pass the model's construction ``rng`` to derive a per-layer seed from it:
    every dropout layer then draws an independent, reproducible mask stream
    (layers built with the default ``seed=0`` would otherwise share masks).
    """

    def __init__(self, p: float, seed: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        if rng is not None:
            if seed is not None:
                raise ValueError("pass either seed or rng, not both")
            seed = int(rng.integers(0, 2 ** 31 - 1))
        self._rng = np.random.default_rng(0 if seed is None else seed)

    @property
    def rng(self) -> np.random.Generator:
        """The layer's seeded mask generator (for fused ops that draw the
        mask themselves, e.g. :func:`repro.autograd.attention`)."""
        return self._rng

    def reseed(self, seed: int) -> None:
        """Restart the mask stream from ``seed``.

        The federated runtime re-derives dropout seeds from the
        ``(run_seed, round, client_id)`` triple at the start of every local
        round (:func:`repro.fl.seeding.reseed_dropout`), so masks do not
        depend on how many rounds this layer object has already lived
        through — a requirement for process-pool workers, whose rebuilt
        models start from round zero.
        """
        self._rng = np.random.default_rng(int(seed))

    def forward(self, x: Tensor) -> Tensor:
        return ag.dropout(x, self.p, training=self.training, rng=self._rng)


class Identity(Module):
    """Pass-through placeholder (used when pruning optional blocks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.relu6(x)


class HardSwish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.hardswish(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.gelu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.sigmoid(x)


_ACTIVATIONS = {"relu": ReLU, "relu6": ReLU6, "hardswish": HardSwish,
                "gelu": GELU, "sigmoid": Sigmoid, "identity": Identity}


def activation(name: str) -> Module:
    """Build an activation module by name (used by the model spec tables)."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; "
                         f"known: {sorted(_ACTIVATIONS)}") from None
