"""Optimisers: SGD (momentum + weight decay) and Adam.

The FL clients build a fresh optimiser per round (federated convention), so
state is intentionally cheap to construct.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 max_grad_norm: float | None = 10.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        if self.max_grad_norm is not None:
            _clip_global_norm(self.params, self.max_grad_norm)
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (used for the transformer models)."""

    def __init__(self, params: Sequence[Parameter], lr: float,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 max_grad_norm: float | None = 10.0):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        if self.max_grad_norm is not None:
            _clip_global_norm(self.params, self.max_grad_norm)
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _clip_global_norm(params: Sequence[Parameter], max_norm: float) -> None:
    """Scale all gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad * param.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad *= scale
