"""Layer / module library built on :mod:`repro.autograd`."""

from .module import Module, Parameter
from .layers import (Linear, Conv2d, BatchNorm2d, BatchNorm1d, LayerNorm,
                     Embedding, Dropout, Identity,
                     ReLU, ReLU6, HardSwish, GELU, Sigmoid, activation)
from .containers import Sequential, ModuleList
from .attention import MultiHeadAttention, TransformerEncoderLayer
from .optim import Optimizer, SGD, Adam
from . import init

__all__ = [
    "Module", "Parameter",
    "Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d", "LayerNorm",
    "Embedding", "Dropout", "Identity",
    "ReLU", "ReLU6", "HardSwish", "GELU", "Sigmoid", "activation",
    "Sequential", "ModuleList",
    "MultiHeadAttention", "TransformerEncoderLayer",
    "Optimizer", "SGD", "Adam",
    "init",
]
