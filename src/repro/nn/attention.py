"""Multi-head self-attention and pre-norm transformer encoder layers.

Used by the customized Transformer (AG-News) and the ALBERT family
(Stack Overflow).  Width scaling shrinks the model dimension and FFN dimension
while keeping the number of heads fixed (head dim scales), which keeps the
prefix/rolling index-map semantics identical to the CNN case.
"""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from ..autograd import Tensor
from .layers import Dropout, LayerNorm, Linear
from .module import Module

__all__ = ["MultiHeadAttention", "TransformerEncoderLayer"]


class MultiHeadAttention(Module):
    """Standard scaled-dot-product multi-head self-attention."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            (0, 2, 1, 3))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        # Single fused tape node for softmax(q·kᵀ·scale)·v with dropout on
        # the weights; the mask stream comes from the same Dropout module
        # RNG as before, so reseeding semantics and mask bits are unchanged.
        context = ag.attention(
            q, k, v, 1.0 / np.sqrt(self.head_dim),
            rng=self.dropout.rng, p=self.dropout.p,
            training=self.dropout.training)                 # (B,H,S,Dh)
        context = context.transpose((0, 2, 1, 3)).reshape(batch, seq, self.dim)
        return self.out_proj(context)


class TransformerEncoderLayer(Module):
    """Pre-norm encoder block: LN -> MHA -> residual, LN -> FFN -> residual."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng, dropout=dropout)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng)
        self.ffn_out = Linear(ffn_dim, dim, rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        hidden = ag.gelu(self.ffn_in(self.norm2(x)))
        return x + self.ffn_out(self.dropout(hidden))
