"""Module system: named parameters, buffers, state dicts, train/eval mode.

The federated algorithms in :mod:`repro.algorithms` operate on *state dicts*
(``name -> numpy array``); the naming contract here (dotted paths through the
module tree) is what makes sub-model extraction and aggregation possible.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor with optional structural metadata.

    ``scale_axes`` marks which axes shrink when the owning model is built at a
    reduced width multiplier (used by the width-heterogeneity index maps);
    axes not listed keep their full size in every variant.
    """

    __slots__ = ("scale_axes",)

    def __init__(self, data, scale_axes: tuple[int, ...] = ()):  # noqa: D401
        super().__init__(data, requires_grad=True)
        self.scale_axes = tuple(scale_axes)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and child :class:`Module` instances as
    attributes; the base class discovers them for iteration / state dicts.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._buffer_scale_axes: dict[str, tuple[int, ...]] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray,
                        scale_axes: tuple[int, ...] = ()) -> None:
        """Track a non-trainable array (e.g. BatchNorm running stats).

        ``scale_axes`` follows the same contract as
        :attr:`Parameter.scale_axes`: axes that shrink in width variants.
        """
        self._buffers[name] = value
        self.__dict__.setdefault("_buffer_scale_axes", {})[name] = tuple(scale_axes)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Tree iteration
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        for mod_name, module in self.named_modules():
            for name, param in module._parameters.items():
                full = f"{mod_name}.{name}" if mod_name else name
                yield full, param

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self) -> Iterator[tuple[str, np.ndarray]]:
        for mod_name, module in self.named_modules():
            for name in module._buffers:
                full = f"{mod_name}.{name}" if mod_name else name
                # Read through the attribute so in-place replacement works.
                yield full, module._buffers[name]

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter and buffer, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Load arrays into parameters/buffers (shape-checked, in place)."""
        own_params = dict(self.named_parameters())
        own_buffers = {name: (mod, leaf)
                       for mod_name, mod in self.named_modules()
                       for leaf in mod._buffers
                       for name in [f"{mod_name}.{leaf}" if mod_name else leaf]}
        missing = []
        for name, param in own_params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"model {param.data.shape} vs state {value.shape}")
            param.data[...] = value
        for name, (mod, leaf) in own_buffers.items():
            if name not in state:
                missing.append(name)
                continue
            buf = mod._buffers[leaf]
            value = np.asarray(state[name], dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ValueError(
                    f"shape mismatch for buffer '{name}': "
                    f"model {buf.shape} vs state {value.shape}")
            buf[...] = value
        if strict:
            if missing:
                raise KeyError(f"missing keys in state dict: {missing[:5]}...")
            extra = set(state) - set(own_params) - set(own_buffers)
            if extra:
                raise KeyError(f"unexpected keys in state dict: {sorted(extra)[:5]}...")

    def parameter_scale_axes(self) -> dict[str, tuple[int, ...]]:
        """Map parameter name -> width-scaled axes (see :class:`Parameter`)."""
        return {name: p.scale_axes for name, p in self.named_parameters()}

    def state_scale_axes(self) -> dict[str, tuple[int, ...]]:
        """Scale axes for *every* state-dict entry (parameters and buffers)."""
        axes = self.parameter_scale_axes()
        for mod_name, module in self.named_modules():
            for leaf, leaf_axes in module._buffer_scale_axes.items():
                full = f"{mod_name}.{leaf}" if mod_name else leaf
                axes[full] = leaf_axes
        return axes

    # ------------------------------------------------------------------
    # Mode / gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
