"""Legacy setup shim: this offline environment has setuptools without the
``wheel`` package, so PEP 660 editable installs fail; ``pip install -e .
--no-use-pep517 --no-build-isolation`` (or plain ``pip install -e .`` on a
modern toolchain) uses this file instead. Configuration lives in
``pyproject.toml``."""

from setuptools import setup

setup()
