#!/usr/bin/env python
"""Diff two BENCH_*.json files and fail on performance regression.

Works with both benchmark schemas in this repo:

* ``bench_autograd/v1`` (from ``benchmarks/bench_autograd.py``): per-op
  throughput numbers under ``runs.<label>.results``.
* ``bench_suite/v1`` (from ``pytest benchmarks/ --bench-json PATH``):
  per-test wall-clock seconds under ``results``.

Every numeric leaf present in both files is compared.  Keys containing
``per_sec`` count as throughput (higher is better); keys containing
``seconds`` count as latency (lower is better).  Keys ending in
``_bytes`` or ``_calls`` are **counters** (lower is better): deterministic
allocation / op-count columns that do not depend on machine speed or CPU
count, gated by the separate ``--counter-threshold`` so a loose wall-clock
threshold (needed on noisy CI hosts) never loosens them.  Exit status is
non-zero when any entry regresses beyond its threshold (default 20%).

Usage::

    python results/compare_bench.py old.json new.json \
        [--threshold 0.2] [--counter-threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _numeric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to ``dotted.path -> float`` entries."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        leaves[prefix] = float(node)
    return leaves


def _direction(path: str) -> str | None:
    """'up' for throughput metrics, 'down' for latency ones, None to skip.

    Only the leaf key decides: op/test names earlier in the path must not
    influence the comparison direction.
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    if leaf.endswith("_bytes") or leaf.endswith("_calls"):
        return "counter"
    if "per_sec" in leaf or "ops" in leaf:
        return "up"
    if "seconds" in leaf or "_time" in leaf:
        return "down"
    return None


def compare(old_doc: dict, new_doc: dict, threshold: float,
            counter_threshold: float | None = None,
            ) -> tuple[list[str], list[str], list[str]]:
    """Return (report, regressions, skipped) lines.

    ``skipped`` names direction-ful metrics present in only one file —
    an op added to or removed from the suite between the two runs.  They
    are reported (so coverage changes are visible) but never counted as
    regressions: a renamed benchmark must not fail the gate.

    Counter leaves (``*_bytes`` / ``*_calls``) regress when they *grow*
    beyond ``counter_threshold``; it defaults to ``threshold`` so the
    three-argument form keeps its historical behaviour.
    """
    if counter_threshold is None:
        counter_threshold = threshold
    old = _numeric_leaves(old_doc)
    new = _numeric_leaves(new_doc)
    report: list[str] = []
    regressions: list[str] = []
    skipped: list[str] = []
    for path in sorted(set(old) ^ set(new)):
        if _direction(path) is None:
            continue
        side = "baseline only" if path in old else "candidate only"
        skipped.append(f"{path} ({side})")
    for path in sorted(set(old) & set(new)):
        direction = _direction(path)
        if direction is None or old[path] == 0:
            continue
        ratio = new[path] / old[path]
        changed = ratio - 1.0
        line = f"{path:60s} {old[path]:>12.2f} -> {new[path]:>12.2f}  ({changed:+.1%})"
        report.append(line)
        if direction == "up" and ratio < 1.0 - threshold:
            regressions.append(line)
        elif direction == "down" and ratio > 1.0 + threshold:
            regressions.append(line)
        elif direction == "counter" and ratio > 1.0 + counter_threshold:
            regressions.append(line)
    return report, regressions, skipped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("new", type=Path, help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--counter-threshold", type=float, default=None,
                        help="allowed fractional growth for *_bytes/*_calls "
                             "counter leaves (defaults to --threshold)")
    args = parser.parse_args(argv)

    old_doc = json.loads(args.old.read_text())
    new_doc = json.loads(args.new.read_text())
    report, regressions, skipped = compare(old_doc, new_doc, args.threshold,
                                           args.counter_threshold)

    for entry in skipped:
        print(f"warning: skipping {entry}: not in both files",
              file=sys.stderr)
    if not report:
        print("no comparable numeric entries found between the two files",
              file=sys.stderr)
        return 2
    print(f"comparing {args.old} -> {args.new} "
          f"(threshold {args.threshold:.0%})")
    for line in report:
        print(" ", line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} entr"
              f"{'y' if len(regressions) == 1 else 'ies'} regressed "
              f">{args.threshold:.0%}:")
        for line in regressions:
            print(" ", line)
        return 1
    print("\nOK: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
