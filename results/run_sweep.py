"""Demo-scale sweep driver, rebuilt on the sweep-manifest API.

Two phases, both resumable:

1. **Warm** — the union of the constraint-figure grids (fig4/5/6: every
   algorithm x dataset under one constraint each, plus the shared
   ``fedavg_smallest`` baseline) is expanded into a
   :class:`~repro.experiments.sweep.SweepManifest` and executed with
   ``run_sweep``.  Status is derived from cache presence, so killing and
   re-running this script continues where the cache left off, and
   ``--shard K/N`` splits the warm phase across hosts.
2. **Render** — each artifact in :data:`PLAN` is resolved through the
   registry (``get_artifact``: a renamed or unregistered figure fails
   loudly instead of silently diverging) and its rows are written to
   ``results/<name>.json`` + ``.txt``.  Rendering runs with the shared
   cache, so warmed cells are free and anything the manifest does not
   cover (fig7 combos, fig8 non-IID, fig9 scalability) computes once and
   lands in the same cache.

Ordering and partial completion come from sweep status, not hand-kept
lists: the plan is ordered by importance, and on a sharded invocation
rendering is skipped while the manifest still has pending cells anywhere
(other hosts are still warming the cache).

Usage::

    python results/run_sweep.py                 # warm + render everything
    python results/run_sweep.py --group a       # key figures only
    python results/run_sweep.py --shard 0/2 --workers 4
"""
from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments import (RunCache, format_table, get_artifact,
                               set_default_cache, write_rows)
from repro.experiments.sweep import (Shard, SweepManifest, expand_grid,
                                     run_sweep, status_rows)
from repro.telemetry.logs import configure_logging, get_logger

RESULTS_DIR = Path(__file__).resolve().parent
MANIFEST_PATH = RESULTS_DIR / "demo_sweep.manifest.json"

_log = get_logger("results.sweep")

#: (group, output name, artifact, title, kwargs) — ordered by importance
#: so partial completion still records the key figures first.  Artifact
#: names resolve through the registry at run time.
PLAN = [
    ("a", "fig4_cifar100", "fig4", "Fig4 CIFAR-100 (computation-limited, demo)",
     {"scale": "demo", "datasets": ["cifar100"]}),
    ("a", "fig4_harbox", "fig4", "Fig4 HAR-BOX (computation-limited, demo)",
     {"scale": "demo", "datasets": ["harbox"]}),
    ("a", "fig4_agnews", "fig4", "Fig4 AG-News (computation-limited, demo)",
     {"scale": "demo", "datasets": ["agnews"]}),
    ("a", "fig7", "fig7", "Fig7 constraint combinations (demo)",
     {"scale": "demo",
      "algorithms": ["fjord", "sheterofl", "fedrolex", "fedepth", "depthfl"]}),
    ("b", "fig6_cifar100", "fig6", "Fig6 CIFAR-100 (memory-limited, demo)",
     {"scale": "demo", "datasets": ["cifar100"]}),
    ("b", "fig6_stackoverflow", "fig6",
     "Fig6 Stack Overflow (memory-limited, demo)",
     {"scale": "demo", "datasets": ["stackoverflow"]}),
    ("b", "fig8", "fig8", "Fig8 non-IID CIFAR-10 (demo)",
     {"scale": "demo", "datasets": ["cifar10"],
      "algorithms": ["sheterofl", "fedrolex", "depthfl", "fedepth"]}),
    ("b", "fig9", "fig9", "Fig9 scalability (demo)",
     {"scale": "demo",
      "algorithms": ["sheterofl", "fedrolex", "fedepth", "depthfl"]}),
    ("b", "fig5_cifar100", "fig5", "Fig5 CIFAR-100 (communication-limited, demo)",
     {"scale": "demo", "datasets": ["cifar100"]}),
    ("b", "fig5_ucihar", "fig5", "Fig5 UCI-HAR (communication-limited, demo)",
     {"scale": "demo", "datasets": ["ucihar"]}),
]

#: which (constraint kind, datasets) grids the warm manifest covers —
#: exactly the run_suite grids behind the PLAN's constraint figures.
WARM_GRIDS = [
    (("computation",), ["cifar100", "harbox", "agnews"]),
    (("memory",), ["cifar100", "stackoverflow"]),
    (("communication",), ["cifar100", "ucihar"]),
]


def build_manifest(cache_dir: Path) -> SweepManifest:
    specs = []
    seen = set()
    for constraints, datasets in WARM_GRIDS:
        for spec in expand_grid(datasets=datasets, constraints=constraints,
                                scale="demo"):
            digest = spec.content_hash()
            if digest not in seen:
                seen.add(digest)
                specs.append(spec)
    manifest = SweepManifest(name="demo_sweep", specs=specs,
                             cache_dir=str(cache_dir))
    manifest.save(MANIFEST_PATH)
    return manifest


def save(name: str, rows: list[dict], title: str) -> None:
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(rows, indent=1))
    (RESULTS_DIR / f"{name}.txt").write_text(
        format_table(rows, title=title) + "\n")
    _log.info("saved %s (%d rows)", name, len(rows),
              extra={"artifact": name, "rows": len(rows)})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("group", nargs="?", choices=("a", "b", "all"),
                        default="all",
                        help="legacy positional group filter (default: all)")
    parser.add_argument("--group", dest="group_opt",
                        choices=("a", "b", "all"), default=None,
                        help="render only this plan group")
    parser.add_argument("--shard", default=None, metavar="K/N",
                        help="warm only this shard of the manifest")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="sweep cells in flight at once")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="run-cache directory "
                             "(default: results/cache)")
    parser.add_argument("--skip-warm", action="store_true",
                        help="skip the manifest warm phase and render "
                             "directly from the cache")
    args = parser.parse_args(argv)
    configure_logging()
    group = args.group_opt or args.group
    shard = Shard.parse(args.shard) if args.shard else Shard()
    cache_dir = Path(args.cache_dir) if args.cache_dir \
        else RESULTS_DIR / "cache"
    cache = RunCache(cache_dir)

    manifest = build_manifest(cache_dir)
    if not args.skip_warm:
        report = run_sweep(manifest, shard, cache=cache,
                           workers=args.workers)
        _log.info("warm phase: %d/%d done on shard %s (%d executed)",
                  report.done, report.total, report.shard, report.executed)
    status = manifest.status(cache=cache)
    print(write_rows(status_rows(manifest, cache=cache,
                                 shards=shard.count),
                     out="table", title=f"Sweep: {manifest.name}"))
    if shard.count > 1 and status.pending_count:
        _log.info("manifest still has %d pending cells across all shards; "
                  "skipping render (re-run unsharded, or after every "
                  "shard finishes)", status.pending_count)
        return 0

    previous = set_default_cache(cache)
    try:
        for plan_group, name, artifact_name, title, kwargs in PLAN:
            if group != "all" and plan_group != group:
                continue
            artifact = get_artifact(artifact_name)
            save(name, artifact.run(**kwargs), title)
    finally:
        set_default_cache(previous)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
