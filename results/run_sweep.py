"""Demo-scale sweep driver: writes each figure's rows to results/ as JSON+txt.

Ordered by importance so partial completion still records the key figures.
"""
import json, sys, time
from repro.experiments import format_table

def save(name, rows, title):
    with open(f"results/{name}.json", "w") as f:
        json.dump(rows, f, indent=1)
    with open(f"results/{name}.txt", "w") as f:
        f.write(format_table(rows, title=title) + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] saved {name} ({len(rows)} rows)", flush=True)

which = sys.argv[1]
t0 = time.time()
if which == "a":
    from repro.experiments import fig4, fig7
    save("fig4_cifar100", fig4.run(scale="demo", datasets=["cifar100"]), "Fig4 CIFAR-100 (computation-limited, demo)")
    save("fig4_harbox", fig4.run(scale="demo", datasets=["harbox"]), "Fig4 HAR-BOX (computation-limited, demo)")
    save("fig4_agnews", fig4.run(scale="demo", datasets=["agnews"]), "Fig4 AG-News (computation-limited, demo)")
    save("fig7", fig7.run(scale="demo", algorithms=["fjord", "sheterofl", "fedrolex", "fedepth", "depthfl"]), "Fig7 constraint combinations (demo)")
elif which == "b":
    from repro.experiments import fig6, fig8, fig9, fig5
    save("fig6_cifar100", fig6.run(scale="demo", datasets=["cifar100"]), "Fig6 CIFAR-100 (memory-limited, demo)")
    save("fig6_stackoverflow", fig6.run(scale="demo", datasets=["stackoverflow"]), "Fig6 Stack Overflow (memory-limited, demo)")
    save("fig8", fig8.run(scale="demo", datasets=["cifar10"], algorithms=["sheterofl", "fedrolex", "depthfl", "fedepth"]), "Fig8 non-IID CIFAR-10 (demo)")
    save("fig9", fig9.run(scale="demo", algorithms=["sheterofl", "fedrolex", "fedepth", "depthfl"]), "Fig9 scalability (demo)")
    save("fig5_cifar100", fig5.run(scale="demo", datasets=["cifar100"]), "Fig5 CIFAR-100 (communication-limited, demo)")
    save("fig5_ucihar", fig5.run(scale="demo", datasets=["ucihar"]), "Fig5 UCI-HAR (communication-limited, demo)")
print("done", which, time.time() - t0, flush=True)
